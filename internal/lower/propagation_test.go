package lower

import (
	"math/rand"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/sim"
	"latencyhide/internal/tree"
)

func TestPropagationLBOnH1(t *testing.T) {
	n := 256
	delays := delaysOf(network.H1(n))
	// single-copy blocks: the bound must reproduce Theorem 9's sqrt(n)
	a, err := assign.SingleCopyBlocks(n, n)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := PropagationLB(delays, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lb < float64(network.ISqrt(n)) {
		t.Fatalf("H1 single-copy propagation LB %.1f < sqrt(n)", lb)
	}
	// two-level margins drive the certified floor down: replication works
	tr := tree.Build(delays, 4)
	ov, err := assign.TwoLevel(tr, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	lb2, err := PropagationLB(delays, ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lb2 >= lb/2 {
		t.Fatalf("replicated assignment floor %.1f not far below single-copy %.1f", lb2, lb)
	}
}

func TestPropagationLBErrors(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(4, 8)
	if _, err := PropagationLB([]int{1, 1}, a, 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Measured slowdowns can never fall below the certified propagation floor.
func TestMeasuredRespectsPropagationLB(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		hostN := 4 + r.Intn(12)
		m := 4 + r.Intn(30)
		delays := make([]int, hostN-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(40)
		}
		owned := make([][]int, hostN)
		for c := 0; c < m; c++ {
			copies := 1 + r.Intn(2)
			seen := map[int]bool{}
			for k := 0; k < copies; k++ {
				p := r.Intn(hostN)
				if !seen[p] {
					seen[p] = true
					owned[p] = append(owned[p], c)
				}
			}
		}
		a, err := assign.FromOwned(hostN, m, owned)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := PropagationLB(delays, a, m)
		if err != nil {
			t.Fatal(err)
		}
		steps := 6 + r.Intn(10)
		res, err := sim.Run(sim.Config{
			Delays: delays,
			Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: steps, Seed: int64(trial)},
			Assign: a,
			Check:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// the chained bound is asymptotic (per 2w steps); allow the
		// one-round slack of a short run
		if res.Slowdown < lb/2-1 {
			t.Fatalf("trial %d: measured %.2f below certified floor %.2f", trial, res.Slowdown, lb)
		}
	}
}
