package lower

import (
	"math/rand"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/network"
)

func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

func TestSingleCopyLBBasics(t *testing.T) {
	// two columns at opposite ends of a 3-link line
	a, err := assign.FromOwned(4, 2, [][]int{{0}, nil, nil, {1}})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := SingleCopyLB([]int{2, 3, 4}, a)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 9 {
		t.Fatalf("LB %d want 9 (total path delay)", lb)
	}
}

func TestSingleCopyLBWorkBound(t *testing.T) {
	// all columns on one host: work bound m/1
	a, err := assign.SingleCopyOnHosts(8, 40, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	lb, err := SingleCopyLB(make7ones(), a)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 40 {
		t.Fatalf("work bound LB %d want 40", lb)
	}
}

func make7ones() []int {
	d := make([]int, 7)
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestSingleCopyLBRejectsMultiCopy(t *testing.T) {
	a, err := assign.FromOwned(2, 1, [][]int{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SingleCopyLB([]int{1}, a); err == nil {
		t.Fatal("multi-copy accepted")
	}
}

// Theorem 9: every strategy in the adversary family certifies >= sqrt(n).
func TestH1AdversaryAlwaysSqrtN(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		minLB, details, err := H1Adversary(n, n)
		if err != nil {
			t.Fatal(err)
		}
		s := int64(network.ISqrt(n))
		if minLB < s {
			t.Fatalf("n=%d: min LB %d < sqrt(n)=%d (details %+v)", n, minLB, s, details)
		}
		if len(details) < 4 {
			t.Fatalf("n=%d: only %d strategies evaluated", n, len(details))
		}
	}
}

// Random single-copy assignments on H1 also certify >= sqrt(n) — the
// theorem is universal, not just about our strategy family.
func TestH1RandomAssignments(t *testing.T) {
	n := 256
	h1 := network.H1(n)
	delays := delaysOf(h1)
	s := int64(network.ISqrt(n))
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		// random contiguous blocks on a random subset of hosts
		k := 1 + r.Intn(n)
		hosts := r.Perm(n)[:k]
		// SingleCopyOnHosts needs ascending host ids for block layout;
		// random order models arbitrary placement
		sortInts(hosts)
		a, err := assign.SingleCopyOnHosts(n, n, hosts)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := SingleCopyLB(delays, a)
		if err != nil {
			t.Fatal(err)
		}
		if lb < s {
			t.Fatalf("trial %d (hosts %d): LB %d < sqrt(n) %d", trial, k, lb, s)
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func twoCopyAssignment(hostN, m int, place func(c int) (int, int)) (*assign.Assignment, error) {
	owned := make([][]int, hostN)
	for c := 0; c < m; c++ {
		p, q := place(c)
		owned[p] = append(owned[p], c)
		if q != p {
			owned[q] = append(owned[q], c)
		}
	}
	return assign.FromOwned(hostN, m, owned)
}

// Theorem 10: two-copy strategies on H2 all certify Omega(log n).
func TestCertifyTwoCopyStrategies(t *testing.T) {
	for _, n := range []int{256, 1024} {
		spec := network.H2(n)
		hostN := spec.Net.NumNodes()
		logn := float64(network.Log2Ceil(spec.N))
		m := hostN
		strategies := map[string]func(c int) (int, int){
			"mirrored-halves": func(c int) (int, int) {
				p := c * (hostN / 2) / m
				return p, p + hostN/2
			},
			"adjacent-pair": func(c int) (int, int) {
				p := c * (hostN - 1) / m
				return p, p + 1
			},
			"single-copy": func(c int) (int, int) {
				p := c * hostN / m
				return p, p
			},
		}
		for name, place := range strategies {
			a, err := twoCopyAssignment(hostN, m, place)
			if err != nil {
				t.Fatal(err)
			}
			cert, err := CertifyTwoCopy(spec, a, a.Load())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// Omega(log n) with the proof's constant 1/(4c)
			want := logn / (4 * float64(a.Load()))
			if cert.SlowdownLB < want {
				t.Fatalf("n=%d %s: LB %.2f < log n/(4c) = %.2f (case %s)",
					n, name, cert.SlowdownLB, want, cert.Case)
			}
		}
	}
}

func TestCertifyTwoCopyRejects(t *testing.T) {
	spec := network.H2(64)
	hostN := spec.Net.NumNodes()
	owned := make([][]int, hostN)
	owned[0] = []int{0}
	owned[1] = []int{0}
	owned[2] = []int{0}
	for p := 3; p < hostN; p++ {
		owned[p] = nil
	}
	a, err := assign.FromOwned(hostN, 1, owned)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CertifyTwoCopy(spec, a, 5); err == nil {
		t.Fatal("three copies accepted")
	}
	b, err := twoCopyAssignment(hostN, hostN, func(c int) (int, int) { return c % hostN, c % hostN })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CertifyTwoCopy(spec, b, 0); err == nil {
		t.Fatal("load above declared constant accepted")
	}
}

func TestCertifyCases(t *testing.T) {
	spec := network.H2(256)
	hostN := spec.Net.NumNodes()
	// disjoint-segments case: adjacent columns on far-apart processors
	// with no shared segment
	a, err := twoCopyAssignment(hostN, hostN/2, func(c int) (int, int) {
		p := c * (hostN / 2) / (hostN / 2)
		_ = p
		return c * 2, c * 2
	})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := CertifyTwoCopy(spec, a, a.Load())
	if err != nil {
		t.Fatal(err)
	}
	if cert.SlowdownLB <= 0 {
		t.Fatalf("certificate %+v", cert)
	}
}

func TestCliqueChainBounds(t *testing.T) {
	for _, k := range []int{4, 16, 100} {
		best := CliqueChainBestLB(k)
		// LB(m) >= best for all m, with equality near m = n^(1/4)
		for m := 1; m <= k; m++ {
			if CliqueChainLB(k, m) < best-1e-9 {
				t.Fatalf("k=%d m=%d: LB %.3f below best %.3f", k, m, CliqueChainLB(k, m), best)
			}
		}
		if CliqueChainLB(k, 0) != CliqueChainLB(k, 1) {
			t.Fatal("m=0 clamp")
		}
	}
}

func TestCliqueChainBestLBValue(t *testing.T) {
	got := CliqueChainBestLB(16) // n = 256, n^(1/4) = 4
	if got < 3.99 || got > 4.01 {
		t.Fatalf("best LB %f want 4", got)
	}
}

func TestSegmentMapCoversEndpoints(t *testing.T) {
	spec := network.H2(256)
	m := segmentMap(spec)
	for p, s := range m {
		if s < 0 || s >= spec.NumSegments() {
			t.Fatalf("processor %d mapped to segment %d", p, s)
		}
		if spec.SegmentOf(p) >= 0 && m[p] != spec.SegmentOf(p) {
			t.Fatalf("processor %d in segment %d mapped to %d", p, spec.SegmentOf(p), m[p])
		}
	}
}
