package lower

import (
	"fmt"

	"latencyhide/internal/assign"
)

// PropagationLB is a universal certified slowdown lower bound for *any*
// database-model assignment on a host line, generalizing the Theorem 9
// ping-pong argument from adjacent columns to arbitrary distances.
//
// For guest columns c and c' = c+w, pebble (c, t) transitively requires
// pebble (c', t-w), which only holders of c' compute, and vice versa; so
//
//	time(c, t) >= time(c', t-w) + dist   and
//	time(c', t') >= time(c, t'-w) + dist,
//
// where dist is the minimum line delay between any holder of c and any
// holder of c' (zero if they share a processor). Chaining the two gives
// time(c, t) >= time(c, t-2w) + 2*dist, i.e. sustained slowdown at least
// dist/w. The bound is the maximum of dist/w over all pairs with w at most
// maxWindow (0 means 2*sqrt of the guest size, enough for every host in
// this repository).
//
// Because every simulation the engine runs must respect these dependency
// chains, measured slowdowns can never fall below PropagationLB; the fuzz
// tests assert it. Redundancy weakens the bound exactly as the paper
// intends: replicating c and c' onto a shared processor drives dist — and
// with it the certified floor — to zero.
func PropagationLB(delays []int, a *assign.Assignment, maxWindow int) (float64, error) {
	if a.HostN != len(delays)+1 {
		return 0, fmt.Errorf("lower: assignment hosts %d != line size %d", a.HostN, len(delays)+1)
	}
	m := a.Columns
	if maxWindow <= 0 {
		maxWindow = 2 * isqrt(m)
		if maxWindow < 4 {
			maxWindow = 4
		}
	}
	if maxWindow >= m {
		maxWindow = m - 1
	}
	prefix := linePrefix(delays)

	// span[c] = [min holder pos, max holder pos] of column c; the minimum
	// inter-holder delay between columns c and c' is zero if their holder
	// spans overlap, else the delay across the gap between the spans.
	lo := make([]int, m)
	hi := make([]int, m)
	for c := 0; c < m; c++ {
		hs := a.Holders[c]
		lo[c], hi[c] = hs[0], hs[len(hs)-1]
	}
	minDist := func(c1, c2 int) int64 {
		if hi[c1] >= lo[c2] && hi[c2] >= lo[c1] {
			// spans overlap: some pair of holders may coincide or be
			// close; conservatively a shared region means distance 0
			// unless the holder sets are disjoint point sets — check
			// exactly by scanning (holder lists are small).
			best := int64(-1)
			for _, p := range a.Holders[c1] {
				for _, q := range a.Holders[c2] {
					d := lineDelay(prefix, p, q)
					if best < 0 || d < best {
						best = d
					}
				}
			}
			return best
		}
		if lo[c2] > hi[c1] {
			return lineDelay(prefix, hi[c1], lo[c2])
		}
		return lineDelay(prefix, hi[c2], lo[c1])
	}

	var best float64
	for c := 0; c < m; c++ {
		for w := 1; w <= maxWindow && c+w < m; w++ {
			if lb := float64(minDist(c, c+w)) / float64(w); lb > best {
				best = lb
			}
		}
	}
	return best, nil
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
