// Package dataflow implements the *dataflow model* of the companion paper
// [2] (Andrews, Leighton, Metaxas, Zhang, "Automatic methods for hiding
// latency in high bandwidth networks", STOC 1996), which this paper
// contrasts with its database model throughout: in the dataflow model a
// pebble's value depends only on the dependency pebbles — there is no local
// database — so *any* processor that knows the inputs may compute it, and
// computation can migrate instead of being replicated.
//
// The package realises the classic diamond-tiling schedule for a guest ring
// on a uniform-delay host: each batch of s = sqrt(d) guest steps, processor
// j computes the shrinking pyramid over its 2s-column segment (no
// communication), ships the two-value left slope of every pyramid row one
// hop left (2s values, delay d), and then computes the inverted-pyramid
// wedge over the segment boundary using its own right slope and the
// received left slope. The wedge's top row is the next batch's base, shifted
// s columns — ownership of columns migrates, no pebble is ever computed
// twice, and the slowdown is ~3*sqrt(d) with replication exactly 1.
//
// Contrast with the database model (package uniform, Theorem 4): the same
// Theta(sqrt(d)) slowdown there *requires* threefold database replication,
// because the wedge mixes columns from two segments and a database's
// updates can only be applied by a processor holding a replica. That
// difference is the paper's Section 6 conclusion, measured by experiment
// E16.
package dataflow

import (
	"fmt"

	"latencyhide/internal/guest"
	"latencyhide/internal/network"
)

// Result reports one diamond-schedule run.
type Result struct {
	HostN, D, S int
	GuestCols   int // m = 2s * hostN, a guest ring
	Batches     int
	GuestSteps  int

	PyramidSteps  int // s(s-1) pebbles
	CommSteps     int // d + ceil(2s/B) - 1
	WedgeSteps    int // s(s+1) pebbles
	StepsPerBatch int
	HostSteps     int64
	Slowdown      float64

	PebblesComputed int64
	// Replication is PebblesComputed / guest work — exactly 1 here, the
	// whole point of the model.
	Replication float64
	// MemoryPerProc is the values a processor holds between batches.
	MemoryPerProc int
	Checked       bool
}

// Run executes the diamond schedule for a guest ring of 2*s*hostN columns
// over batches*s guest steps on a hostN-processor uniform-delay-d host, and
// verifies the final pebble row against the sequential reference executor.
// bandwidth <= 0 selects the paper's log n default.
func Run(hostN, d, batches, bandwidth int, seed int64) (*Result, error) {
	if hostN < 2 {
		return nil, fmt.Errorf("dataflow: hostN %d < 2", hostN)
	}
	if d < 1 {
		return nil, fmt.Errorf("dataflow: delay %d < 1", d)
	}
	if batches < 1 {
		return nil, fmt.Errorf("dataflow: batches %d < 1", batches)
	}
	s := network.ISqrt(d)
	if s < 1 {
		s = 1
	}
	if bandwidth <= 0 {
		bandwidth = network.Log2Ceil(hostN)
		if bandwidth < 1 {
			bandwidth = 1
		}
	}
	w := 2 * s
	m := hostN * w
	T := batches * s

	res := &Result{
		HostN: hostN, D: d, S: s, GuestCols: m, Batches: batches, GuestSteps: T,
		PyramidSteps:  s * (s - 1),
		CommSteps:     d + (2*s+bandwidth-1)/bandwidth - 1,
		WedgeSteps:    s * (s + 1),
		MemoryPerProc: w,
	}
	res.StepsPerBatch = res.PyramidSteps + res.CommSteps + res.WedgeSteps
	res.HostSteps = int64(res.StepsPerBatch) * int64(batches)
	res.Slowdown = float64(res.HostSteps) / float64(T)

	// --- value-level execution ---
	// base[j] holds processor j's segment values; in batch b the segment
	// covers ring columns [offset + j*w, offset + (j+1)*w), offset = b*s.
	base := make([][]uint64, hostN)
	for j := range base {
		base[j] = make([]uint64, w)
		for x := 0; x < w; x++ {
			base[j][x] = guest.InitValue((j*w+x)%m, seed)
		}
	}
	mod := func(c int) int { return ((c % m) + m) % m }
	compute := func(col, absStep int, left, self, right uint64) uint64 {
		// ring guest: neighbors ascending by id, with the wrap pair
		// ordered by column id like guest.Ring does
		a, b := mod(col-1), mod(col+1)
		var deps []uint64
		if a < b {
			deps = []uint64{left, right}
		} else if a > b {
			deps = []uint64{right, left}
		} else {
			deps = []uint64{left}
		}
		res.PebblesComputed++
		return guest.ComputeValue(0, mod(col), absStep, self, deps)
	}

	offset := 0
	for b := 0; b < batches; b++ {
		// Phase 1: pyramids. pyr[j][r] covers columns
		// [offset + j*w + r, offset + (j+1)*w - r), r = 0..s-1; row 0 is
		// the base.
		pyr := make([][][]uint64, hostN)
		for j := 0; j < hostN; j++ {
			pyr[j] = make([][]uint64, s)
			pyr[j][0] = base[j]
			for r := 1; r < s; r++ {
				width := w - 2*r
				row := make([]uint64, width)
				prev := pyr[j][r-1]
				for x := 0; x < width; x++ {
					// column offset+j*w+r+x; prev row starts one
					// column left of this row
					col := offset + j*w + r + x
					row[x] = compute(col, b*s+r, prev[x], prev[x+1], prev[x+2])
				}
				pyr[j][r] = row
			}
		}
		// Phase 2: ship left-slope pairs leftward (charged in CommSteps):
		// slope[j][r] = the two leftmost values of pyramid j's row r.
		slope := make([][][2]uint64, hostN)
		for j := 0; j < hostN; j++ {
			slope[j] = make([][2]uint64, s)
			for r := 0; r < s; r++ {
				row := pyr[j][r]
				if len(row) < 2 {
					return nil, fmt.Errorf("dataflow: pyramid row too narrow (s=%d)", s)
				}
				slope[j][r] = [2]uint64{row[0], row[1]}
			}
		}
		// Phase 3: wedges. Processor j computes the wedge over boundary
		// c0 = offset + (j+1)*w using its pyramid's right columns and
		// the left slope received from j+1. Wedge row r covers
		// [c0 - r, c0 + r), r = 1..s; its top row is the new base.
		newBase := make([][]uint64, hostN)
		for j := 0; j < hostN; j++ {
			c0 := offset + (j+1)*w
			right := slope[(j+1)%hostN]
			// wedge rows indexed locally: wrow[r] has width 2r,
			// covering columns c0-r .. c0+r-1
			wrow := make([][]uint64, s+1)
			for r := 1; r <= s; r++ {
				row := make([]uint64, 2*r)
				for x := 0; x < 2*r; x++ {
					col := c0 - r + x
					// value at (col', r-1) for col' = col-1, col, col+1
					get := func(colq int) uint64 {
						// sources: wedge row r-1 covers
						// [c0-r+1, c0+r-1); pyramid j row r-1 covers
						// [offset+j*w+r-1, c0-r+1); right slope pair
						// covers {c0+r-1, c0+r}.
						switch {
						case colq >= c0-r+1 && colq < c0+r-1:
							return wrow[r-1][colq-(c0-r+1)]
						case colq < c0-r+1:
							prow := pyr[j][r-1]
							idx := colq - (offset + j*w + r - 1)
							if idx < 0 || idx >= len(prow) {
								panic(fmt.Sprintf("dataflow: left dep col %d outside pyramid row (r=%d)", colq, r))
							}
							return prow[idx]
						default:
							if colq == c0+r-1 {
								return right[r-1][0]
							}
							if colq == c0+r {
								return right[r-1][1]
							}
							panic(fmt.Sprintf("dataflow: right dep col %d unreachable (r=%d)", colq, r))
						}
					}
					row[x] = compute(col, b*s+r, get(col-1), get(col), get(col+1))
				}
				wrow[r] = row
			}
			newBase[j] = wrow[s]
		}
		base = newBase
		offset += s
	}

	// Verify the final row (= base rows at offset) against the reference.
	ref, err := guest.RunDigest(guest.Spec{
		Graph:       guest.NewRing(m),
		Steps:       T,
		Seed:        seed,
		NewDatabase: guest.NewNullDB,
	})
	if err != nil {
		return nil, err
	}
	for j := 0; j < hostN; j++ {
		for x := 0; x < w; x++ {
			col := mod(offset + j*w + x)
			if base[j][x] != ref.LastRow[col] {
				return nil, fmt.Errorf("dataflow: column %d final value mismatch", col)
			}
		}
	}
	res.Replication = float64(res.PebblesComputed) / float64(int64(m)*int64(T))
	res.Checked = true
	return res, nil
}
