package dataflow

import (
	"testing"

	"latencyhide/internal/uniform"
)

func TestDiamondScheduleVerifies(t *testing.T) {
	for _, d := range []int{1, 4, 9, 16, 64, 100} {
		r, err := Run(6, d, 3, 0, 11)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !r.Checked {
			t.Fatalf("d=%d: unchecked", d)
		}
		if r.Replication != 1 {
			t.Fatalf("d=%d: replication %f != 1 (the dataflow model never recomputes)", d, r.Replication)
		}
		if r.GuestCols != 6*2*r.S {
			t.Fatalf("d=%d: guest %d", d, r.GuestCols)
		}
	}
}

func TestDiamondSlowdownIsThetaSqrtD(t *testing.T) {
	var prev float64
	for _, d := range []int{16, 64, 256, 1024} {
		r, err := Run(8, d, 2, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		s := float64(r.S)
		if r.Slowdown < s || r.Slowdown > 4*s {
			t.Fatalf("d=%d: slowdown %.1f not ~3 sqrt(d)", d, r.Slowdown)
		}
		if r.Slowdown <= prev {
			t.Fatalf("slowdown not increasing at d=%d", d)
		}
		prev = r.Slowdown
		// batch fits in 3d + comm slack
		if r.StepsPerBatch > 3*d+2*r.S {
			t.Fatalf("d=%d: batch %d > 3d", d, r.StepsPerBatch)
		}
	}
}

// The paper's Section 6 contrast: dataflow achieves the same Theta(sqrt d)
// as the database model's Theorem 4 but with replication 1 instead of 3.
func TestDataflowVsDatabaseModel(t *testing.T) {
	d := 64
	df, err := Run(8, d, 3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := uniform.Run(8, d, 3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if df.Replication != 1 {
		t.Fatal("dataflow replicated")
	}
	dbRep := float64(db.PebblesComputed) / float64(int64(db.GuestCols)*int64(db.GuestSteps))
	if dbRep < 2 {
		t.Fatalf("database-model replication %.2f should be ~3", dbRep)
	}
	// both Theta(sqrt d): within a small factor of each other
	if df.Slowdown > db.Slowdown || db.Slowdown > 3*df.Slowdown {
		t.Fatalf("slowdowns df=%.1f db=%.1f out of expected relation", df.Slowdown, db.Slowdown)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(1, 4, 1, 0, 1); err == nil {
		t.Fatal("hostN=1 accepted")
	}
	if _, err := Run(4, 0, 1, 0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := Run(4, 4, 0, 0, 1); err == nil {
		t.Fatal("batches=0 accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(6, 25, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(6, 25, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.HostSteps != b.HostSteps || a.PebblesComputed != b.PebblesComputed {
		t.Fatal("nondeterministic")
	}
	c, err := Run(6, 25, 2, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.PebblesComputed != a.PebblesComputed {
		t.Fatal("work should not depend on seed")
	}
}

func TestBandwidthAffectsCommSteps(t *testing.T) {
	wide, err := Run(4, 256, 1, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Run(4, 256, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2s = 32 values: wide pays ceil(32/16)-1 = 1 extra, narrow 31
	if wide.CommSteps != 256+1 {
		t.Fatalf("wide comm %d", wide.CommSteps)
	}
	if narrow.CommSteps != 256+31 {
		t.Fatalf("narrow comm %d", narrow.CommSteps)
	}
}

func TestManyBatchesWrapTheRing(t *testing.T) {
	// enough batches that the diamond offset wraps the ring several times
	r, err := Run(4, 16, 10, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("unchecked after ring wrap")
	}
	if r.GuestSteps != 40 {
		t.Fatalf("steps %d", r.GuestSteps)
	}
}
