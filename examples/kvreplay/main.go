// Kvreplay exercises the paper's motivating scenario: each guest processor
// owns a large local database — here a real key-value store — that is
// consulted and updated at every step, so the computation cannot be treated
// as memoryless dataflow. The example runs the same replicated-update
// workload on the Theorem 9 host H1 (a few very slow links, constant
// average delay) three ways:
//
//   - single copy per database (what prior approaches do): pays d_max,
//   - OVERLAP with redundant replicas: pays ~sqrt(d_ave) log^3 n,
//   - the slow-clock bound for reference,
//
// and verifies every replica's final state against the sequential reference.
package main

import (
	"fmt"
	"log"

	"latencyhide"
)

func main() {
	const n = 1024 // workstations in H1; d_max = sqrt(n) = 32
	host := latencyhide.H1(n)
	line, err := latencyhide.EmbedLine(host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host:", host)

	const steps = 64
	kv := latencyhide.KVFactory(256) // 256-cell KV store per guest processor

	ov, err := latencyhide.SimulateLine(line.Delays, latencyhide.Options{
		Variant:     latencyhide.TwoLevel,
		Beta:        2,
		Steps:       steps,
		Seed:        99,
		Check:       true,
		NewDatabase: kv,
	})
	if err != nil {
		log.Fatal(err)
	}

	single, err := latencyhide.SingleCopyBlocks(n, ov.GuestCols)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := latencyhide.RunSimulation(latencyhide.SimConfig{
		Delays: line.Delays,
		Guest: latencyhide.GuestSpec{
			Graph:       latencyhide.NewGuestLine(ov.GuestCols),
			Steps:       steps,
			Seed:        99,
			NewDatabase: kv,
		},
		Assign: single,
		Check:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("guest: %d processors, each owning a %d-cell KV database, %d update rounds\n",
		ov.GuestCols, 256, steps)
	fmt.Printf("\n%-22s %10s %8s %12s\n", "strategy", "slowdown", "load", "verified")
	fmt.Printf("%-22s %10.1f %8d %12v\n", "OVERLAP (2-level)", ov.Sim.Slowdown, ov.Load, ov.Sim.Checked)
	fmt.Printf("%-22s %10.1f %8d %12v\n", "single copy", sc.Slowdown, sc.Load, sc.Checked)
	fmt.Printf("%-22s %10.1f %8s %12s\n", "slow clock (bound)",
		latencyhide.SlowClockSlowdown(line.Delays), "-", "-")
	fmt.Printf("\nredundant replication computes %.2fx the guest work to avoid the d_max=%d wait\n",
		ov.Sim.Redundancy, hostDmax(line.Delays))
	fmt.Printf("memory: %.1f MiB of replicas for %d databases (paper: \"memory is expensive\" — the load bound keeps this minimal)\n",
		float64(replicaMemory(ov.GuestCols, ov.Redundancy))/(1<<20), ov.GuestCols)
}

// replicaMemory estimates total replica bytes: columns * redundancy * the
// 256-cell KVDB size.
func replicaMemory(columns int, redundancy float64) int64 {
	const kvdbSize = 8*256 + 24
	return int64(float64(columns) * redundancy * kvdbSize)
}

func hostDmax(delays []int) int {
	best := 0
	for _, d := range delays {
		if d > best {
			best = d
		}
	}
	return best
}
