// Sortarray runs odd-even transposition sort — the classic systolic
// algorithm written for a unit-delay linear array — through the simulated
// NOW. Each guest processor holds one key; at odd steps processors (0,1),
// (2,3), ... compare-exchange, at even steps (1,2), (3,4), ...; after m
// steps the keys are sorted. This is precisely the kind of "program written
// for a well-structured unit-delay machine" the paper's introduction wants
// to run unchanged on a network with large and variable latencies.
package main

import (
	"fmt"
	"log"
	"sort"

	"latencyhide"
)

// sortOp implements one compare-exchange step. At guest step t, processor i
// pairs with i+1 when i%2 == (t+1)%2, otherwise with i-1; the left partner
// keeps the min, the right partner the max. End processors without a
// partner keep their key.
func sortOp(_ uint64, node, step int, self uint64, neighbors []uint64) uint64 {
	pairRight := node%2 == (step+1)%2
	if pairRight {
		// partner is node+1 = the last neighbor (if it exists)
		if node == 0 && len(neighbors) == 1 {
			// node 0's only neighbor is node 1
			if neighbors[0] < self {
				return neighbors[0]
			}
			return self
		}
		if len(neighbors) == 2 {
			if neighbors[1] < self {
				return neighbors[1]
			}
			return self
		}
		return self // right end, no partner
	}
	// partner is node-1 = the first neighbor (if node > 0)
	if node > 0 {
		other := neighbors[0]
		if other > self {
			return other
		}
		return self
	}
	return self
}

func main() {
	// Host: a 96-workstation NOW with two very slow links.
	delays := make([]int, 95)
	for i := range delays {
		delays[i] = 1
	}
	delays[30], delays[60] = 96, 96

	const m = 192 // keys / guest processors
	init := func(node int, _ int64) uint64 {
		// a fixed scrambled input
		return uint64((node*73 + 41) % m)
	}

	spec := latencyhide.GuestSpec{
		Graph: latencyhide.NewGuestLine(m),
		Steps: m, // odd-even sort completes in m steps
		Op:    sortOp,
		Init:  init,
	}
	a, err := latencyhide.UniformBlocks(96, 2, 4, 0) // replicated block margins
	if err != nil {
		log.Fatal(err)
	}
	res, err := latencyhide.RunSimulation(latencyhide.SimConfig{
		Delays: delays,
		Guest:  spec,
		Assign: a,
		Check:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("odd-even transposition sort of %d keys on a 96-workstation NOW\n", m)
	fmt.Printf("host steps %d (slowdown %.1fx), verified: %v\n",
		res.HostSteps, res.Slowdown, res.Checked)

	// Read the sorted result off the reference (the verified run computed
	// exactly these values).
	ref, err := latencyhide.GuestReference(spec)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]uint64, m)
	for i := range out {
		out[i] = ref.Value(i, m)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		log.Fatal("output not sorted — kernel bug")
	}
	fmt.Printf("sorted: first=%d last=%d (input was scrambled residues mod %d)\n",
		out[0], out[m-1], m)
}
