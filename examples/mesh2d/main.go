// Mesh2d emulates a 2-dimensional guest array on an unstructured NOW
// (Theorem 8): the workload the paper's Section 5 targets — iterative
// stencil computations written for a clean m x m unit-delay mesh, deployed
// on a network whose links are anything but uniform.
package main

import (
	"fmt"
	"log"

	"latencyhide"
)

func main() {
	host := latencyhide.RandomNOW(256, 4, latencyhide.BimodalDelay{Near: 1, Far: 64, P: 0.03}, 5)
	fmt.Println("host:", host)

	out, err := latencyhide.SimulateMeshOnNOW(host, latencyhide.MeshOptions{
		Rows:  16,
		Steps: 16,
		Seed:  7,
		Check: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest: %dx%d unit-delay array (%d nodes), %d steps\n",
		out.Rows, out.Cols, out.Rows*out.Cols, out.Sim.GuestSteps)
	fmt.Printf("assignment: whole mesh columns per workstation, tree overlaps at interval boundaries\n")
	fmt.Printf("load: %d databases/workstation, redundancy %.2fx\n",
		out.Sim.Load, out.Sim.Redundancy)
	fmt.Printf("slowdown: %.1fx (Theorem 8 bound ~ (m + m^2/n) log^3 n = %.0f)\n",
		out.Sim.Slowdown, out.PredictedSlowdown)
	if out.Sim.Checked {
		fmt.Println("verified: every database replica matches the sequential reference")
	}

	// Compare with the uniform-delay intermediate of Theorem 7 at the
	// same size, to see what the general host costs over the clean case.
	uni, err := latencyhide.SimulateMeshOnUniformLine(64, 8, out.Cols, latencyhide.MeshOptions{
		Rows:  out.Rows,
		Steps: 16,
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same mesh on a uniform-delay line (Theorem 7): slowdown %.1fx\n",
		uni.Sim.Slowdown)
}
