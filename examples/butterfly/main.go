// Butterfly runs an information-dissemination kernel on a butterfly guest —
// the FFT communication pattern Section 7 names among the networks one
// ultimately wants to simulate on a NOW. Each node repeatedly takes the max
// of its own and its neighbors' values; after diameter = 2*levels steps
// every node holds the global maximum. The whole computation executes on a
// simulated 128-workstation NOW with heterogeneous delays, bit-verified
// against the sequential reference.
package main

import (
	"fmt"
	"log"

	"latencyhide"
)

func maxOp(_ uint64, _ int, _ int, self uint64, neighbors []uint64) uint64 {
	best := self
	for _, v := range neighbors {
		if v > best {
			best = v
		}
	}
	return best
}

func main() {
	const levels = 5
	g := latencyhide.NewGuestButterfly(levels) // 6 ranks x 32 = 192 nodes
	diameter := 2 * levels

	host := latencyhide.RandomNOW(128, 4, latencyhide.BimodalDelay{Near: 1, Far: 48, P: 0.03}, 9)
	fmt.Println("host:", host)

	init := func(node int, _ int64) uint64 { return uint64(node * 2654435761) }
	l := latencyhide.LayoutBFS(g)
	m := latencyhide.LayoutMeasure(g, l)
	fmt.Printf("guest: %s (%d nodes), BFS layout: cutwidth %d, max stretch %d\n",
		g.Name(), g.NumNodes(), m.CutWidth, m.MaxStretch)

	r, err := latencyhide.SimulateGuestOnNOW(g, l, host, latencyhide.GuestLayoutOptions{
		Steps: diameter,
		Op:    maxOp,
		Init:  init,
		Check: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d gossip rounds: slowdown %.1fx, load %d, verified: %v\n",
		diameter, r.Sim.Slowdown, r.Sim.Load, r.Sim.Checked)

	// Read the result off the reference executor (the verified run
	// computed exactly these values) and confirm full dissemination.
	ref, err := latencyhide.GuestReference(latencyhide.GuestSpec{
		Graph: g, Steps: diameter, Op: maxOp, Init: init,
	})
	if err != nil {
		log.Fatal(err)
	}
	var globalMax uint64
	for i := 0; i < g.NumNodes(); i++ {
		if v := init(i, 0); v > globalMax {
			globalMax = v
		}
	}
	reached := 0
	for i := 0; i < g.NumNodes(); i++ {
		if ref.Value(i, diameter) == globalMax {
			reached++
		}
	}
	fmt.Printf("dissemination: %d/%d nodes hold the global max after %d rounds\n",
		reached, g.NumNodes(), diameter)
	if reached != g.NumNodes() {
		log.Fatal("butterfly diameter bound violated — simulation bug")
	}
}
