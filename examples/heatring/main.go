// Heatring runs a real numerical kernel — explicit 1-D heat diffusion on a
// rod of cells — through the simulated NOW, using the guest model's
// pluggable op. The pebble value of cell i at step t is the cell's
// temperature (a float64 packed into the 64-bit pebble), computed from its
// own and its neighbors' temperatures at step t-1:
//
//	u_i(t) = u_i(t-1) + alpha * (u_{i-1}(t-1) - 2 u_i(t-1) + u_{i+1}(t-1))
//
// The host engine schedules, executes and verifies the computation exactly
// as it does the paper's digest workload, so the printed temperatures are
// genuinely produced by the latency-hiding simulation — Check=true asserts
// every database replica is bit-identical to the sequential reference.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"latencyhide"
)

const alpha = 0.25

func heatOp(_ uint64, _ int, _ int, self uint64, neighbors []uint64) uint64 {
	u := math.Float64frombits(self)
	lap := -2 * u
	// End cells have one neighbor: mirror it (insulated boundary).
	switch len(neighbors) {
	case 2:
		lap += math.Float64frombits(neighbors[0]) + math.Float64frombits(neighbors[1])
	case 1:
		lap += 2 * math.Float64frombits(neighbors[0])
	}
	return math.Float64bits(u + alpha*lap)
}

func main() {
	// Host: a 128-workstation line whose middle links are slow (a NOW
	// spanning two machine rooms, say).
	delays := make([]int, 127)
	for i := range delays {
		delays[i] = 1
		if i >= 60 && i < 68 {
			delays[i] = 64
		}
	}

	steps := 200
	spikeAt := -1 // filled in once the guest size is known
	opts := latencyhide.Options{
		Variant: latencyhide.WorkEfficient,
		Beta:    8,
		Steps:   steps,
		Check:   true, // bit-exact against the sequential reference
		Op:      heatOp,
	}
	// The guest size is chosen by OVERLAP (n' * beta); probe it once with
	// the default init, then rerun with the spike centred.
	probe, err := latencyhide.SimulateLine(delays, latencyhide.Options{
		Variant: opts.Variant, Beta: opts.Beta, Steps: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cells := probe.GuestCols
	spikeAt = cells / 2
	opts.Init = func(node int, _ int64) uint64 {
		if node == spikeAt {
			return math.Float64bits(100)
		}
		return math.Float64bits(0)
	}

	out, err := latencyhide.SimulateLine(delays, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated a %d-cell heat rod for %d steps on a 128-workstation NOW\n",
		out.GuestCols, steps)
	fmt.Printf("slowdown %.1fx, load %d, efficiency %.2f, verified: %v\n",
		out.Sim.Slowdown, out.Load, out.Efficiency(), out.Sim.Checked)

	// Read the final temperature profile from the reference executor —
	// the verified run computed exactly these values on the NOW.
	ref, err := latencyhide.GuestReference(latencyhide.GuestSpec{
		Graph: latencyhide.NewGuestLine(cells),
		Steps: steps,
		Op:    heatOp,
		Init:  opts.Init,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal temperature profile around the spike:")
	for i := spikeAt - 32; i <= spikeAt+32; i += 8 {
		u := math.Float64frombits(ref.Value(i, steps))
		fmt.Printf("cell %4d  %7.4f  %s\n", i, u, strings.Repeat("#", int(u*8)))
	}
	var total float64
	for i := 0; i < cells; i++ {
		total += math.Float64frombits(ref.Value(i, steps))
	}
	fmt.Printf("\nheat conserved: total = %.6f (started at 100)\n", total)
}
