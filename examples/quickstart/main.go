// Quickstart: simulate a unit-delay guest ring on an unstructured NOW with
// heavy-tailed link delays, automatically — no slackness supplied by the
// programmer — and compare against what the prior approaches would pay.
package main

import (
	"fmt"
	"log"

	"latencyhide"
)

func main() {
	// An unstructured 256-workstation NOW: max degree 4, most links fast,
	// a few long-haul links two orders of magnitude slower.
	host := latencyhide.RandomNOW(256, 4, latencyhide.BimodalDelay{Near: 1, Far: 128, P: 0.02}, 1)
	fmt.Println("host:", host)

	// Run algorithm OVERLAP (Theorem 5 variant): embed a line with
	// dilation 3, build the interval tree, place overlapping database
	// replicas, and execute the guest with full value verification.
	out, err := latencyhide.Simulate(host, latencyhide.Options{
		Variant: latencyhide.TwoLevel,
		Beta:    2,
		Steps:   64,
		Seed:    42,
		Check:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("guest: %d-processor unit-delay ring, %d steps\n",
		out.GuestCols, out.Sim.GuestSteps)
	fmt.Printf("embedding: dilation %d (Fact 3 guarantees <= 3)\n", out.Dilation)
	fmt.Printf("assignment: load %d, up to %d replicas per database\n",
		out.Load, out.MaxCopies)
	fmt.Printf("slowdown: %.1fx (theory bound ~ sqrt(d_ave) log^3 n = %.0f)\n",
		out.Sim.Slowdown, out.PredictedSlowdown)
	fmt.Printf("efficiency: %.2f host-work per guest-work (work-preserving)\n",
		out.Efficiency())
	if out.Sim.Checked {
		fmt.Println("verified: every database replica matches the sequential reference")
	}

	// What the old approaches pay on the same host.
	line, err := latencyhide.EmbedLine(host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prior approaches: slow-clock %.0fx",
		latencyhide.SlowClockSlowdown(line.Delays))
	sc, err := latencyhide.SingleCopyBaseline(line.Delays, out.GuestCols, 64, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(", single-copy %.1fx\n", sc.Sim.Slowdown)
}
