// Benchmarks: one per paper experiment (E1-E12, DESIGN.md's per-experiment
// index) plus engine micro-benchmarks. Each experiment bench runs the
// core measurement of its table and reports the headline figure (usually
// the slowdown) via b.ReportMetric, so `go test -bench=.` regenerates the
// shape of every paper result.
package latencyhide_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"latencyhide"
	"latencyhide/internal/adapt"
	"latencyhide/internal/assign"
	"latencyhide/internal/baseline"
	"latencyhide/internal/dataflow"
	"latencyhide/internal/expt"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/layout"
	"latencyhide/internal/lower"
	"latencyhide/internal/mesharray"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/overlap"
	"latencyhide/internal/sim"
	"latencyhide/internal/telemetry"
	"latencyhide/internal/tree"
	"latencyhide/internal/uniform"
)

func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

func nowLine(n int, seed int64) []int {
	far := n / 4
	if far < 4 {
		far = 4
	}
	return delaysOf(network.Line(n, network.BimodalDelay{Near: 1, Far: far, P: 1 / float64(far)}, seed))
}

// BenchmarkE1OverlapSlowdown — Theorem 2: load-one OVERLAP vs host size.
func BenchmarkE1OverlapSlowdown(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			delays := nowLine(n, int64(n))
			var slow float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.LoadOne, Steps: 48, Seed: 11,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = out.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE2WorkEfficient — Theorem 3: blocked OVERLAP, efficiency.
func BenchmarkE2WorkEfficient(b *testing.B) {
	delays := nowLine(512, 5)
	for _, beta := range []int{2, 8} {
		b.Run(fmt.Sprintf("beta=%d", beta), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.WorkEfficient, Beta: beta, Steps: 32, Seed: 21,
				})
				if err != nil {
					b.Fatal(err)
				}
				eff = out.Efficiency()
			}
			b.ReportMetric(eff, "efficiency")
		})
	}
}

// BenchmarkE3UniformSqrtD — Theorem 4: the 5d-per-sqrt(d)-steps schedule.
func BenchmarkE3UniformSqrtD(b *testing.B) {
	for _, d := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := uniform.Run(16, d, 3, 0, 51)
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE4Combined — Theorem 5: two-level composition vs d_ave.
func BenchmarkE4Combined(b *testing.B) {
	for _, mean := range []float64{4, 16} {
		b.Run(fmt.Sprintf("dave=%.0f", mean), func(b *testing.B) {
			delays := delaysOf(network.Line(256, network.ExpDelay{Mean: mean}, int64(100*mean)))
			var slow float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, Steps: 32, Seed: 31,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = out.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE5GeneralHost — Theorem 6: ring guest on embedded NOWs.
func BenchmarkE5GeneralHost(b *testing.B) {
	src := network.ExpDelay{Mean: 3}
	hosts := map[string]*network.Network{
		"mesh16x16":  network.Mesh2D(16, 16, src, 1),
		"hypercube8": network.Hypercube(8, src, 3),
		"randnow256": network.RandomNOW(256, 4, src, 5),
	}
	for name, g := range hosts {
		b.Run(name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.Simulate(g, overlap.Options{
					Variant: overlap.LoadOne, Steps: 32, Seed: 61,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = out.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE6CliqueChain — Section 4: the unbounded-degree counterexample.
func BenchmarkE6CliqueChain(b *testing.B) {
	for _, k := range []int{6, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g := network.CliqueChain(k)
			var slow float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.Simulate(g, overlap.Options{
					Variant: overlap.LoadOne, Steps: 24, Seed: 81,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = out.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
			b.ReportMetric(lower.CliqueChainBestLB(k), "certifiedLB")
		})
	}
}

// BenchmarkE7Mesh — Theorems 7-8: 2-D guest arrays.
func BenchmarkE7Mesh(b *testing.B) {
	for _, m := range []int{8, 32} {
		b.Run(fmt.Sprintf("mesh=%dx%d", m, m), func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := mesharray.OnUniformLine(8, 64, m, mesharray.Options{
					Rows: m, Steps: 12, Seed: 91,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE8SingleCopy — Theorem 9: H1 forces sqrt(n) on single copies.
func BenchmarkE8SingleCopy(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			delays := delaysOf(network.H1(n))
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := baseline.SingleCopy(delays, n, 48, 101, false)
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
			b.ReportMetric(float64(network.ISqrt(n)), "sqrtN")
		})
	}
}

// BenchmarkE9TwoCopy — Theorem 10: certified Omega(log n) on H2.
func BenchmarkE9TwoCopy(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			spec := network.H2(n)
			hostN := spec.Net.NumNodes()
			m := hostN / 2
			owned := make([][]int, hostN)
			half := hostN / 2
			for c := 0; c < m; c++ {
				p := c * half / m
				owned[p] = append(owned[p], c)
				owned[p+half] = append(owned[p+half], c)
			}
			a, err := latencyhide.AssignmentFromOwned(hostN, m, owned)
			if err != nil {
				b.Fatal(err)
			}
			var lb float64
			for i := 0; i < b.N; i++ {
				cert, err := lower.CertifyTwoCopy(spec, a, a.Load())
				if err != nil {
					b.Fatal(err)
				}
				lb = cert.SlowdownLB
			}
			b.ReportMetric(lb, "certifiedLB")
			b.ReportMetric(float64(network.Log2Ceil(spec.N)), "logN")
		})
	}
}

// BenchmarkE10Killing — Lemmas 1-4: interval-tree processing throughput.
func BenchmarkE10Killing(b *testing.B) {
	delays := delaysOf(network.Line(4096, network.ParetoDelay{Alpha: 1.2, Scale: 2, Cap: 4096}, 7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tree.Build(delays, 4)
		if err := t.CheckLemmas(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Bandwidth — the bandwidth assumption: burst exchange cost.
func BenchmarkE11Bandwidth(b *testing.B) {
	for _, bw := range []int{1, 8} {
		b.Run(fmt.Sprintf("B=%d", bw), func(b *testing.B) {
			var batch float64
			for i := 0; i < b.N; i++ {
				r, err := uniform.Run(16, 1024, 1, bw, 71)
				if err != nil {
					b.Fatal(err)
				}
				batch = float64(r.StepsPerBatch)
			}
			b.ReportMetric(batch, "steps/batch")
		})
	}
}

// BenchmarkE12RedundancyAblation — redundancy on vs off on the same host.
func BenchmarkE12RedundancyAblation(b *testing.B) {
	delays := nowLine(256, 41)
	for _, strip := range []bool{false, true} {
		name := "redundant"
		if strip {
			name = "stripped"
		}
		b.Run(name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, Steps: 48, Seed: 41,
					StripRedundancy: strip,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = out.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// --- engine micro-benchmarks ---

// BenchmarkEngineSequential measures raw engine throughput
// (pebbles/second) on a mid-size OVERLAP run.
func BenchmarkEngineSequential(b *testing.B) {
	benchEngine(b, 0)
}

// BenchmarkEngineParallel4 exercises the conservative parallel engine.
func BenchmarkEngineParallel4(b *testing.B) {
	benchEngine(b, 4)
}

func benchEngine(b *testing.B, workers int) {
	delays := nowLine(1024, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays:  delays,
		Guest:   guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 64, Seed: 7},
		Assign:  a,
		Workers: workers,
	}
	// B/op divided by pebbles/op is the engine's allocation footprint per
	// pebble; benchcmp derives and tracks it as bytes_per_pebble. Peak RSS
	// rides along as rss-bytes (report-only — it includes runtime spans and
	// whatever earlier benchmarks left resident).
	b.ReportAllocs()
	telemetry.ResetPeakRSS()
	b.ResetTimer()
	var pebbles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pebbles = res.PebblesComputed
	}
	b.ReportMetric(float64(pebbles), "pebbles/op")
	if rss := telemetry.ReadPeakRSS(); rss > 0 {
		b.ReportMetric(float64(rss), "rss-bytes")
	}
}

// BenchmarkEngineLarge is the memory-tier benchmark: a single run computes
// over five million pebbles, so B/op ÷ pebbles/op (benchcmp's
// bytes_per_pebble) reflects steady-state allocation behavior at scale
// rather than per-run setup cost — the first step toward the ROADMAP
// "millions of guest columns" item.
func BenchmarkEngineLarge(b *testing.B) {
	delays := nowLine(4096, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 160, Seed: 7},
		Assign: a,
	}
	b.ReportAllocs()
	telemetry.ResetPeakRSS()
	b.ResetTimer()
	var pebbles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pebbles = res.PebblesComputed
	}
	if pebbles < 5_000_000 {
		b.Fatalf("run computed %d pebbles, want >= 5M for the memory tier", pebbles)
	}
	b.ReportMetric(float64(pebbles), "pebbles/op")
	if rss := telemetry.ReadPeakRSS(); rss > 0 {
		b.ReportMetric(float64(rss), "rss-bytes")
	}
}

// hugeRSSBudgetBytes is the declared working-set ceiling for the 10M-pebble
// tier: the whole benchmark process — route table, knowledge rings, calendar,
// Go runtime — must peak under 512 MB resident, the budget a fleet shard on a
// commodity runner gets. The gate is on peak RSS (VmHWM after a reset), not
// allocation totals, because retained spans are what evicts a neighbor.
const hugeRSSBudgetBytes = 512 << 20

// BenchmarkEngineHuge is the production-scale memory tier: a single run
// computes over ten million pebbles and must stay inside hugeRSSBudgetBytes.
// LATENCYHIDE_HUGE_HOSTS scales the host line down for smoke runs (CI's
// bench-huge-smoke job); the pebble floor only applies at full scale, but the
// RSS budget always does — a catastrophic blowup shows at any size.
func BenchmarkEngineHuge(b *testing.B) {
	hostN := 8192
	var minPebbles int64 = 10_400_000
	if s := os.Getenv("LATENCYHIDE_HUGE_HOSTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 64 {
			b.Fatalf("LATENCYHIDE_HUGE_HOSTS=%q: want an integer >= 64", s)
		}
		hostN = n
		minPebbles = 0
	}
	delays := nowLine(hostN, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 168, Seed: 7},
		Assign: a,
	}
	b.ReportAllocs()
	telemetry.ResetPeakRSS()
	b.ResetTimer()
	var pebbles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pebbles = res.PebblesComputed
	}
	b.StopTimer()
	if pebbles < minPebbles {
		b.Fatalf("run computed %d pebbles, want >= %d for the huge tier", pebbles, minPebbles)
	}
	b.ReportMetric(float64(pebbles), "pebbles/op")
	if rss := telemetry.ReadPeakRSS(); rss > 0 {
		b.ReportMetric(float64(rss), "rss-bytes")
		if rss > hugeRSSBudgetBytes {
			b.Fatalf("peak RSS %.1f MB exceeds the declared %d MB budget",
				float64(rss)/(1<<20), hugeRSSBudgetBytes>>20)
		}
	}
}

// BenchmarkTelemetryOverhead guards the zero-cost-when-disabled contract of
// the telemetry registry: Config.Telemetry nil (the default) leaves only
// plain int64 field increments on the hot path and must track
// BenchmarkEngineSequential. CI gates the disabled path at 2% via
// benchcmp -diff-latest.
func BenchmarkTelemetryOverhead(b *testing.B) {
	benchEngine(b, 0)
}

// BenchmarkTelemetryEnabled pays for a live registry: per-chunk shards,
// periodic flushes every 64 steps, histogram observes and peak scans.
// Compare against BenchmarkTelemetryOverhead to price instrumentation.
func BenchmarkTelemetryEnabled(b *testing.B) {
	delays := nowLine(1024, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays:    delays,
		Guest:     guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 64, Seed: 7},
		Assign:    a,
		Telemetry: telemetry.NewRegistry(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pebbles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pebbles = res.PebblesComputed
	}
	b.ReportMetric(float64(pebbles), "pebbles/op")
}

// BenchmarkFaultQueryOff guards the zero-cost-when-disabled contract of
// the fault layer: Config.Faults nil (the default) must leave no regime
// query on the hot path — the engine checks one pointer per run, not per
// injection. CI gates this at 2% PR-over-PR via benchcmp -diff-latest
// (make bench-fault-gate), mirroring the telemetry-disabled gate.
func BenchmarkFaultQueryOff(b *testing.B) {
	benchEngine(b, 0)
}

// BenchmarkFaultQueryOn pays for a live plan carrying every regime kind at
// once (jitter, outage, Pareto spikes, a moving drift stripe and link
// churn), so every injection consults ExtraDelay and LinkDown across the
// full interval-scan path. Compare against BenchmarkFaultQueryOff to price
// the adversary.
func BenchmarkFaultQueryOn(b *testing.B) {
	delays := nowLine(1024, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 64, Seed: 7},
		Assign: a,
		Faults: &fault.Plan{
			Seed:    5,
			Jitters: []fault.Jitter{{Link: -1, Prob: 0.1, Amp: 2}},
			Outages: []fault.Outage{{Link: -1, Window: 16, Frac: 0.02}},
			Spikes:  []fault.Spike{{Link: -1, Prob: 0.05, Alpha: 1.5, Cap: 8}},
			Drifts:  []fault.Drift{{Link: -1, Window: 16, Frac: 0.2, Period: 64, Stride: 1}},
			Churns:  []fault.Churn{{Link: 0, Up: 48, Down: 2}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pebbles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pebbles = res.PebblesComputed
	}
	b.ReportMetric(float64(pebbles), "pebbles/op")
}

// BenchmarkRecorderOverhead guards the zero-cost-when-disabled contract of
// the observability hooks: "off" (Config.Recorder nil, the default) must
// track the pre-instrumentation engine cost, while "on" pays for event
// buffering. Compare off vs on with `go test -bench=RecorderOverhead`.
func BenchmarkRecorderOverhead(b *testing.B) {
	delays := nowLine(1024, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	base := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 64, Seed: 7},
		Assign: a,
	}
	for _, workers := range []int{0, 4} {
		for _, mode := range []string{"off", "on"} {
			b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
				cfg := base
				cfg.Workers = workers
				for i := 0; i < b.N; i++ {
					if mode == "on" {
						cfg.Recorder = obs.NewBuffer()
					}
					if _, err := sim.Run(cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkObsAnalyze measures the post-run analysis pipeline (stream ->
// stall attribution + critical path) on a recorded mid-size run.
func BenchmarkObsAnalyze(b *testing.B) {
	delays := nowLine(1024, 3)
	t := tree.Build(delays, 4)
	a, err := assign.TwoLevel(t, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	rec := obs.NewBuffer()
	cfg := sim.Config{
		Delays:   delays,
		Guest:    guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 64, Seed: 7},
		Assign:   a,
		Recorder: rec,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	info := cfg.ObsInfo(res)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := obs.Analyze(rec.Events(), info)
		an.Stalls()
		an.CriticalPath()
	}
	b.ReportMetric(float64(rec.Len()), "events")
}

// BenchmarkReferenceExecutor measures the sequential oracle.
func BenchmarkReferenceExecutor(b *testing.B) {
	spec := guest.Spec{Graph: guest.NewLinearArray(4096), Steps: 64, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := guest.RunDigest(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedding measures the dilation-3 line embedding.
func BenchmarkEmbedding(b *testing.B) {
	g := network.RandomNOW(4096, 4, network.ExpDelay{Mean: 3}, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := latencyhide.EmbedLine(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentHarness runs the full quick-scale harness once per
// iteration (the end-to-end reproduction cost).
func BenchmarkExperimentHarness(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for i := 0; i < b.N; i++ {
		var sink discard
		if err := expt.RunAll(&sink, expt.Quick, false); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkE13Resilience — fault-injected runs: the replicated-blocks
// assignment under a mid-run crash and under windowed link outages.
func BenchmarkE13Resilience(b *testing.B) {
	delays := delaysOf(network.Line(16, network.UniformDelay{Lo: 1, Hi: 8}, 13))
	a, err := assign.ReplicatedBlocks(16, 32, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{"crash", &fault.Plan{Seed: 1, Crashes: []fault.Crash{{Host: 7, Step: 8}}}},
		{"outage", &fault.Plan{Seed: 42, Outages: []fault.Outage{{Link: -1, Window: 8, Frac: 0.2}}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.Config{
					Delays: delays,
					Guest:  guest.Spec{Graph: guest.NewLinearArray(32), Steps: 16, Seed: 13},
					Assign: a,
					Faults: tc.plan,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE18Adaptive — the E18 core measurement: adaptive c=2 under each
// adversarial regime (spike / drift / churn), controller live.
func BenchmarkE18Adaptive(b *testing.B) {
	delays := delaysOf(network.Line(16, network.UniformDelay{Lo: 1, Hi: 8}, 13))
	a, err := assign.ReplicatedBlocks(16, 32, 2)
	if err != nil {
		b.Fatal(err)
	}
	pol := &adapt.Policy{Epoch: 16, Threshold: 0.25, MaxExtra: 1, Budget: 8, RequireFault: true}
	for _, tc := range []struct {
		name string
		plan *fault.Plan
	}{
		{"spike", &fault.Plan{Seed: 7, Spikes: []fault.Spike{{Link: -1, Prob: 0.5, Alpha: 0.8, Cap: 32}}}},
		{"drift", &fault.Plan{Seed: 7, Drifts: []fault.Drift{{Link: -1, Window: 8, Frac: 0.9, Period: 2, Stride: 1}}}},
		{"churn", &fault.Plan{Seed: 7, Churns: []fault.Churn{{Link: -1, Up: 6, Down: 6}}}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var acts float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.Config{
					Delays: delays,
					Guest:  guest.Spec{Graph: guest.NewLinearArray(32), Steps: 24, Seed: 13},
					Assign: a,
					Faults: tc.plan,
					Adapt:  pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				acts = float64(r.AdaptActivations)
			}
			b.ReportMetric(acts, "activations")
		})
	}
}

// BenchmarkE17HigherDimArrays — the higher-dimensional generalization.
func BenchmarkE17HigherDimArrays(b *testing.B) {
	delays := delaysOf(network.Line(64, network.UniformDelay{Lo: 1, Hi: 8}, 13))
	for _, dims := range [][]int{{216}, {36, 6}, {6, 6, 6}} {
		g := guest.NewArrayND(dims...)
		b.Run(fmt.Sprintf("%dD", len(dims)), func(b *testing.B) {
			l := layout.BFS(g)
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := layout.Simulate(g, l, delays, layout.Options{Steps: 6, Seed: 31})
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE14StructuredGuests — trees/butterflies/hypercubes on a NOW.
func BenchmarkE14StructuredGuests(b *testing.B) {
	delays := delaysOf(network.Line(96, network.BimodalDelay{Near: 1, Far: 24, P: 0.04}, 17))
	tr := guest.NewBinaryTree(6)
	hc := guest.NewHypercube(6)
	bf := guest.NewButterfly(4)
	cases := []struct {
		name string
		g    guest.Graph
		l    *layout.Layout
	}{
		{"tree-inorder", tr, layout.InOrder(tr)},
		{"hypercube-id", hc, layout.Identity(hc.NumNodes())},
		{"butterfly-rank", bf, layout.RankMajor(bf)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := layout.Simulate(c.g, c.l, delays, layout.Options{Steps: 6, Seed: 19})
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE15SameStructure — latency in isolation (Section 7).
func BenchmarkE15SameStructure(b *testing.B) {
	for _, src := range []network.DelaySource{network.ConstDelay(1), network.ExpDelay{Mean: 8}} {
		b.Run(src.(fmt.Stringer).String(), func(b *testing.B) {
			delays := delaysOf(network.Line(256, src, 3))
			var slow float64
			for i := 0; i < b.N; i++ {
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.LoadOne, Steps: 32, Seed: 23,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = out.Sim.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
		})
	}
}

// BenchmarkE16ModelContrast — database vs dataflow model (Section 6).
func BenchmarkE16ModelContrast(b *testing.B) {
	for _, d := range []int{64, 1024} {
		b.Run(fmt.Sprintf("dataflow/d=%d", d), func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				r, err := dataflow.Run(8, d, 3, 0, 7)
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Slowdown
			}
			b.ReportMetric(slow, "slowdown")
			b.ReportMetric(1, "replication")
		})
		b.Run(fmt.Sprintf("database/d=%d", d), func(b *testing.B) {
			var slow, rep float64
			for i := 0; i < b.N; i++ {
				r, err := uniform.Run(8, d, 3, 0, 7)
				if err != nil {
					b.Fatal(err)
				}
				slow = r.Slowdown
				rep = float64(r.PebblesComputed) / float64(int64(r.GuestCols)*int64(r.GuestSteps))
			}
			b.ReportMetric(slow, "slowdown")
			b.ReportMetric(rep, "replication")
		})
	}
}

// BenchmarkEngineParallelScaling measures wall-clock speedup of the
// conservative parallel engine at increasing worker counts on one large
// OVERLAP configuration.
func BenchmarkEngineParallelScaling(b *testing.B) {
	delays := nowLine(2048, 3)
	tr := tree.Build(delays, 4)
	a, err := assign.TwoLevel(tr, 2, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 48, Seed: 7},
		Assign: a,
	}
	for _, workers := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineParallelScalingSkewed repeats the scaling measurement on a
// deliberately unbalanced workload: a quadratic column ramp plus a
// replication hotspot concentrate several times more pebbles at the left end
// of the line, so naive host-count splits produce stragglers and the
// work-balanced cuts have to earn their keep.
func BenchmarkEngineParallelScalingSkewed(b *testing.B) {
	const hostN = 2048
	delays := nowLine(hostN, 3)
	m := 2 * hostN
	owned := make([][]int, hostN)
	add := func(p, c int) {
		if p >= hostN {
			p = hostN - 1
		}
		owned[p] = append(owned[p], c)
	}
	for c := 0; c < m; c++ {
		frac := float64(c) / float64(m)
		p := int(frac * frac * float64(hostN))
		add(p, c)
		if c < m/4 {
			// The ramp's densest columns also carry a second replica on the
			// neighboring host.
			add(p+1, c)
		}
	}
	a, err := assign.FromOwned(hostN, m, owned)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: 24, Seed: 7},
		Assign: a,
	}
	for _, workers := range []int{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLayouts measures layout construction and annealing for a
// mid-size guest.
func BenchmarkLayouts(b *testing.B) {
	g := guest.NewHypercube(9) // 512 nodes
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			layout.BFS(g)
		}
	})
	b.Run("bisection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			layout.Bisection(g, int64(i))
		}
	})
	b.Run("anneal", func(b *testing.B) {
		start := layout.Identity(g.NumNodes())
		for i := 0; i < b.N; i++ {
			layout.Anneal(g, start, int64(i), 0)
		}
	})
}

// BenchmarkDilation3Embedding measures Fact 3 on hosts of increasing size.
func BenchmarkDilation3Embedding(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		g := network.RandomNOW(n, 4, network.ExpDelay{Mean: 3}, 3)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := latencyhide.EmbedLine(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
